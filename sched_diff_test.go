package commopt

import (
	"fmt"
	"os"
	"testing"

	"commopt/internal/comm"
	"commopt/internal/programs"
)

// TestSchedMatchesGoroutineOracle is the differential gate for the M:N
// scheduler: every bundled benchmark and the shipped example, at every
// optimization level, both communication protocols, and processor counts
// spanning one proc to a full 8×8 mesh, must produce bit-identical
// arrays and identical simulated statistics whether processors run on
// the worker pool or on the goroutine-per-proc oracle
// (RunOptions.ForceGoroutinePerProc). Virtual times are carried in the
// messages themselves, so any divergence — in data, counts, or any
// single processor's time breakdown — means scheduling order leaked
// into simulated semantics.
func TestSchedMatchesGoroutineOracle(t *testing.T) {
	levels := []struct {
		name string
		opts comm.Options
	}{
		{"baseline", comm.Baseline()},
		{"rr", comm.RR()},
		{"cc", comm.CC()},
		{"pl", comm.PL()},
		{"pl-maxlat", comm.PLMaxLatency()},
		{"pl-hoist", comm.Options{RemoveRedundant: true, Combine: true, Pipeline: true, HoistInvariant: true}},
	}

	type target struct {
		name string
		prog *Program
		cfg  map[string]float64
	}
	var targets []target
	for _, b := range programs.Suite() {
		prog, err := Compile(b.Source)
		if err != nil {
			t.Fatalf("%s: compile: %v", b.Name, err)
		}
		targets = append(targets, target{b.Name, prog, b.TestConfig})
	}
	src, err := os.ReadFile("examples/zpl/laplace.zpl")
	if err != nil {
		t.Fatal(err)
	}
	lap, err := Compile(string(src))
	if err != nil {
		t.Fatalf("laplace: compile: %v", err)
	}
	targets = append(targets, target{"laplace", lap, map[string]float64{"n": 16, "iters": 3}})

	// pvm exercises message-passing recycling through the mailbox return
	// path, shmem the rendezvous token path (park on ready tokens).
	for _, lib := range []string{"pvm", "shmem"} {
		for _, tgt := range targets {
			for _, lv := range levels {
				plan := tgt.prog.Plan(lv.opts)
				for _, procs := range []int{1, 4, 64} {
					t.Run(fmt.Sprintf("%s/%s/%s/p%d", lib, tgt.name, lv.name, procs), func(t *testing.T) {
						run := func(oracle bool) RunOptions {
							return RunOptions{
								Library:               lib,
								Procs:                 procs,
								Configs:               tgt.cfg,
								ForceGoroutinePerProc: oracle,
							}
						}
						sched, err := tgt.prog.Run(plan, run(false))
						if err != nil {
							t.Fatalf("scheduler run: %v", err)
						}
						oracle, err := tgt.prog.Run(plan, run(true))
						if err != nil {
							t.Fatalf("oracle run: %v", err)
						}
						if sched.ExecTime != oracle.ExecTime {
							t.Errorf("ExecTime: sched %v, oracle %v", sched.ExecTime, oracle.ExecTime)
						}
						if sched.DynamicTransfers != oracle.DynamicTransfers {
							t.Errorf("DynamicTransfers: sched %d, oracle %d", sched.DynamicTransfers, oracle.DynamicTransfers)
						}
						if sched.Messages != oracle.Messages {
							t.Errorf("Messages: sched %d, oracle %d", sched.Messages, oracle.Messages)
						}
						if sched.BytesSent != oracle.BytesSent {
							t.Errorf("BytesSent: sched %d, oracle %d", sched.BytesSent, oracle.BytesSent)
						}
						if sched.Reductions != oracle.Reductions {
							t.Errorf("Reductions: sched %d, oracle %d", sched.Reductions, oracle.Reductions)
						}
						if sched.Output != oracle.Output {
							t.Errorf("Output differs:\nsched:  %q\noracle: %q", sched.Output, oracle.Output)
						}
						if sched.Breakdown != oracle.Breakdown {
							t.Errorf("Breakdown: sched %+v, oracle %+v", sched.Breakdown, oracle.Breakdown)
						}
						for r := range sched.PerProc {
							if sched.PerProc[r] != oracle.PerProc[r] {
								t.Errorf("PerProc[%d]: sched %+v, oracle %+v", r, sched.PerProc[r], oracle.PerProc[r])
							}
						}
						for _, a := range tgt.prog.IR.Arrays {
							if d := sched.MaxAbsDiff(oracle, a.Name); d != 0 {
								t.Errorf("array %s: max abs diff %g, want bit-identical", a.Name, d)
							}
						}
					})
				}
			}
		}
	}
}
