package commopt

import (
	"testing"

	"commopt/internal/comm"
	"commopt/internal/programs"
)

const smokeSrc = `
program smoke;

config var n : integer = 16;
config var iters : integer = 4;

region R = [1..n, 1..n];
region Interior = [2..n-1, 2..n-1];

direction east = [0, 1]; west = [0, -1]; north = [-1, 0]; south = [1, 0];

var A, B, C : [R] float;
var err : float;

procedure main();
var t : integer;
begin
  [R] A := Index1 * 100.0 + Index2;
  [R] B := 0.0;
  [R] C := 0.0;
  for t := 1 to iters do
    [Interior] begin
      B := 0.25 * (A@east + A@west + A@north + A@south);
      C := B@east - B@west;
      A := A + 0.5 * (B - A) + 0.01 * C;
    end;
  end;
  [R] err := max<< abs(A);
  writeln("err = ", err);
end;
`

func TestSmokeEndToEnd(t *testing.T) {
	prog, err := Compile(smokeSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var results []float64
	for _, opts := range []comm.Options{comm.Baseline(), comm.RR(), comm.CC(), comm.PL(), comm.PLMaxLatency()} {
		plan := prog.Plan(opts)
		if plan.StaticCount == 0 {
			t.Fatalf("%v: no transfers planned", opts)
		}
		for _, lib := range []string{"pvm", "shmem"} {
			for _, procs := range []int{1, 4, 16} {
				res, err := prog.Run(plan, RunOptions{Library: lib, Procs: procs})
				if err != nil {
					t.Fatalf("%v/%s/p%d: %v", opts, lib, procs, err)
				}
				if res.ExecTime <= 0 {
					t.Errorf("%v/%s/p%d: nonpositive exec time", opts, lib, procs)
				}
				v := res.Array("A").At(8, 8, 1)
				results = append(results, v)
				if v != results[0] {
					t.Errorf("%v/%s/p%d: A(8,8)=%v, want %v (baseline)", opts, lib, procs, v, results[0])
				}
			}
		}
	}
}

// mustSuiteProgram compiles a bundled benchmark for tests.
func mustSuiteProgram(t *testing.T, name string) *Program {
	t.Helper()
	b, err := programs.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(b.Source)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestFacadeErrors(t *testing.T) {
	if _, err := Compile("program"); err == nil {
		t.Error("parse error not surfaced")
	}
	if _, err := Compile("program p; procedure main(); begin x := 1.0; end;"); err == nil {
		t.Error("semantic error not surfaced")
	}
	prog, err := Compile(smokeSrc)
	if err != nil {
		t.Fatal(err)
	}
	plan := prog.Plan(comm.PL())
	if _, err := prog.Run(plan, RunOptions{Machine: "cm5"}); err == nil {
		t.Error("unknown machine accepted")
	}
	if _, err := prog.Run(plan, RunOptions{Library: "mpi"}); err == nil {
		t.Error("unknown library accepted")
	}
	other, err := Compile(smokeSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Run(plan, RunOptions{}); err == nil {
		t.Error("plan from a different program accepted")
	}
}

func TestRunDefaults(t *testing.T) {
	prog, err := Compile(smokeSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Run(prog.Plan(comm.CC()), RunOptions{Configs: map[string]float64{"n": 16, "iters": 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mesh.Size() != 64 {
		t.Errorf("default partition = %d processors, want 64 (the paper's)", res.Mesh.Size())
	}
}
